//! The debugger engine: the paper's IDE (§III) minus the Qt pixels.
//!
//! "Unlike most debuggers, the Tetra IDE will have multiple code views in
//! debug mode: one for each thread of the currently running program. This
//! will allow students to step through the different threads
//! independently." This engine provides exactly that capability as a
//! library: it implements [`DebugHook`] for the interpreter, and exposes a
//! controller API (pause / step / resume / inspect, per thread) that a UI —
//! here, the `tetra debug` CLI — drives from another thread.

use crate::race::LocksetDetector;
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tetra_interp::hooks::{DebugHook, ExecEvent, HookDecision, HookPoint};
use tetra_runtime::{ErrorKind, RuntimeError};

/// What a thread should do when it reaches its next statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Keep running (stop only at breakpoints).
    Run,
    /// Stop at the next statement.
    Pause,
}

/// A thread currently suspended by the debugger.
#[derive(Debug, Clone)]
pub struct PausedThread {
    pub thread: u32,
    pub line: u32,
    /// Variables visible at the pause point, pre-rendered.
    pub locals: Vec<(String, String)>,
}

#[derive(Default)]
struct State {
    /// Per-thread next-statement mode; threads default to `default_mode`.
    modes: BTreeMap<u32, Mode>,
    default_mode: Option<Mode>,
    breakpoints: HashSet<u32>,
    /// Variable names watched for writes: the writing thread pauses at its
    /// next statement (so the new value is visible in its locals).
    watches: HashSet<String>,
    /// (thread, variable, line) hits recorded by the watch machinery.
    watch_hits: Vec<(u32, String, u32)>,
    paused: BTreeMap<u32, PausedThread>,
    stopping: bool,
}

impl State {
    fn mode_of(&self, thread: u32) -> Mode {
        self.modes.get(&thread).copied().or(self.default_mode).unwrap_or(Mode::Run)
    }
}

/// The debugger. Create one, pass it to
/// [`tetra_interp::Interp::with_hook`], and drive it from any thread.
pub struct Debugger {
    state: Mutex<State>,
    cv: Condvar,
    events: Mutex<Vec<ExecEvent>>,
    race: Mutex<LocksetDetector>,
    /// Record every `Statement` event (noisy; great for timelines).
    record_statements: bool,
}

impl Debugger {
    /// `start_paused` stops every thread at its first statement — how an
    /// IDE begins a debug session.
    pub fn new(start_paused: bool) -> Arc<Debugger> {
        Arc::new(Debugger {
            state: Mutex::new(State {
                default_mode: start_paused.then_some(Mode::Pause),
                ..State::default()
            }),
            cv: Condvar::new(),
            events: Mutex::new(Vec::new()),
            race: Mutex::new(LocksetDetector::new()),
            record_statements: false,
        })
    }

    /// A tracing debugger: records every statement/lock/thread event (for
    /// `tetra trace` timelines) without pausing anything.
    pub fn tracer() -> Arc<Debugger> {
        Arc::new(Debugger {
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
            events: Mutex::new(Vec::new()),
            race: Mutex::new(LocksetDetector::new()),
            record_statements: true,
        })
    }

    // ---- controller API ------------------------------------------------------

    pub fn set_breakpoint(&self, line: u32) {
        self.state.lock().breakpoints.insert(line);
    }

    pub fn clear_breakpoint(&self, line: u32) {
        self.state.lock().breakpoints.remove(&line);
    }

    pub fn breakpoints(&self) -> Vec<u32> {
        let mut b: Vec<u32> = self.state.lock().breakpoints.iter().copied().collect();
        b.sort();
        b
    }

    /// Watch a variable: any thread that writes it pauses at its next
    /// statement (the write has landed, so `locals` shows the new value).
    pub fn watch(&self, name: impl Into<String>) {
        self.state.lock().watches.insert(name.into());
    }

    pub fn unwatch(&self, name: &str) {
        self.state.lock().watches.remove(name);
    }

    /// (thread, variable, line) triples recorded by watchpoints so far.
    pub fn watch_hits(&self) -> Vec<(u32, String, u32)> {
        self.state.lock().watch_hits.clone()
    }

    /// Ask every thread to stop at its next statement.
    pub fn pause_all(&self) {
        let mut st = self.state.lock();
        st.default_mode = Some(Mode::Pause);
        let ids: Vec<u32> = st.modes.keys().copied().collect();
        for id in ids {
            st.modes.insert(id, Mode::Pause);
        }
    }

    /// Ask one thread to stop at its next statement.
    pub fn pause_thread(&self, thread: u32) {
        self.state.lock().modes.insert(thread, Mode::Pause);
    }

    /// Resume a paused thread until the next breakpoint.
    pub fn resume(&self, thread: u32) {
        let mut st = self.state.lock();
        st.modes.insert(thread, Mode::Run);
        st.paused.remove(&thread);
        drop(st);
        self.cv.notify_all();
    }

    /// Resume a paused thread for exactly one statement — the per-thread
    /// stepping the paper's IDE is built around.
    pub fn step(&self, thread: u32) {
        let mut st = self.state.lock();
        st.modes.insert(thread, Mode::Pause);
        st.paused.remove(&thread);
        drop(st);
        self.cv.notify_all();
    }

    /// Resume every paused thread.
    pub fn resume_all(&self) {
        let mut st = self.state.lock();
        st.default_mode = None;
        let ids: Vec<u32> = st.modes.keys().copied().collect();
        for id in ids {
            st.modes.insert(id, Mode::Run);
        }
        st.paused.clear();
        drop(st);
        self.cv.notify_all();
    }

    /// Cancel the program: every thread errors out with `Cancelled`.
    pub fn stop(&self) {
        self.state.lock().stopping = true;
        self.cv.notify_all();
    }

    /// Threads currently suspended, with their lines and variables.
    pub fn paused(&self) -> Vec<PausedThread> {
        self.state.lock().paused.values().cloned().collect()
    }

    /// Block until `pred` holds over the paused set, or time out.
    pub fn wait_until<F>(&self, timeout: Duration, mut pred: F) -> bool
    where
        F: FnMut(&[PausedThread]) -> bool,
    {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let paused: Vec<PausedThread> =
                    self.state.lock().paused.values().cloned().collect();
                if pred(&paused) {
                    return true;
                }
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Everything recorded so far.
    pub fn events(&self) -> Vec<ExecEvent> {
        self.events.lock().clone()
    }

    /// Race reports from the lockset detector.
    pub fn races(&self) -> Vec<crate::race::RaceReport> {
        self.race.lock().reports()
    }
}

impl DebugHook for Debugger {
    fn on_statement(&self, point: &HookPoint<'_>) -> HookDecision {
        let mut st = self.state.lock();
        if st.stopping {
            return HookDecision::Stop;
        }
        let at_breakpoint = st.breakpoints.contains(&point.line);
        let should_pause = at_breakpoint || st.mode_of(point.thread_id) == Mode::Pause;
        if !should_pause {
            return HookDecision::Continue;
        }
        st.paused.insert(
            point.thread_id,
            PausedThread { thread: point.thread_id, line: point.line, locals: point.vars.locals() },
        );
        HookDecision::Block
    }

    fn wait_for_resume(&self, thread: u32) -> Result<(), RuntimeError> {
        let mut st = self.state.lock();
        while st.paused.contains_key(&thread) && !st.stopping {
            self.cv.wait(&mut st);
        }
        if st.stopping {
            return Err(RuntimeError::new(ErrorKind::Cancelled, "stopped by the debugger", 0));
        }
        Ok(())
    }

    fn on_event(&self, ev: &ExecEvent) {
        match ev {
            ExecEvent::Read { loc, name, id, line, locks } => {
                self.race.lock().on_access(loc, name.as_str(), *id, *line, locks, false);
            }
            ExecEvent::Write { loc, name, id, line, locks } => {
                self.race.lock().on_access(loc, name.as_str(), *id, *line, locks, true);
                let mut st = self.state.lock();
                if st.watches.contains(name.as_str()) {
                    st.watch_hits.push((*id, name.to_string(), *line));
                    st.modes.insert(*id, Mode::Pause);
                }
            }
            ExecEvent::ThreadStart { id, .. } => self.race.lock().on_thread_start(*id),
            ExecEvent::ThreadEnd { id } => self.race.lock().on_thread_end(*id),
            ExecEvent::Statement { .. } if !self.record_statements => return,
            _ => {}
        }
        // Reads/writes are too noisy to keep; everything else is recorded.
        if !matches!(ev, ExecEvent::Read { .. } | ExecEvent::Write { .. }) {
            self.events.lock().push(ev.clone());
        }
    }
}
