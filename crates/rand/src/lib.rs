//! API-compatible subset of the `rand` crate for offline builds.
//!
//! Implements exactly the surface the workspace uses — `thread_rng()`, the
//! [`Rng`] trait with `gen::<f64>()`, `gen::<u64>()`, `gen_bool` and
//! `gen_range` over integer ranges — on top of a xoshiro256++ generator
//! seeded per thread from the system clock and a process-wide counter.
//! Not cryptographically secure; the language's `random()` builtin makes no
//! such promise either.

use std::cell::RefCell;
use std::ops::{Range, RangeInclusive};
use std::sync::atomic::{AtomicU64, Ordering};

/// xoshiro256++ state.
#[derive(Debug, Clone)]
pub struct ThreadRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

static SEED_COUNTER: AtomicU64 = AtomicU64::new(0x1234_5678_9ABC_DEF0);

impl ThreadRng {
    fn from_entropy() -> ThreadRng {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let mut seed = nanos
            ^ SEED_COUNTER.fetch_add(0x9E37_79B9, Ordering::Relaxed)
            ^ (std::process::id() as u64) << 32;
        let s = [
            splitmix64(&mut seed),
            splitmix64(&mut seed),
            splitmix64(&mut seed),
            splitmix64(&mut seed),
        ];
        ThreadRng { s }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

thread_local! {
    static RNG: RefCell<ThreadRng> = RefCell::new(ThreadRng::from_entropy());
}

/// A per-thread generator, mirroring `rand::thread_rng()`. The returned
/// handle owns a snapshot re-synced with the thread-local state on drop, so
/// repeated calls advance the same stream.
pub fn thread_rng() -> ThreadRng {
    RNG.with(|r| {
        // Advance the stored state so the next call gets a fresh stream
        // even if this handle is kept alive.
        let mut stored = r.borrow_mut();
        let handle = stored.clone();
        stored.next_u64();
        handle
    })
}

/// Sampleable output types for [`Rng::gen`] (subset of rand's `Standard`
/// distribution).
pub trait Standard: Sized {
    fn sample(rng: &mut ThreadRng) -> Self;
}

impl Standard for f64 {
    fn sample(rng: &mut ThreadRng) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample(rng: &mut ThreadRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut ThreadRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample(rng: &mut ThreadRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut ThreadRng) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut ThreadRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut ThreadRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Subset of rand's `Rng` extension trait.
pub trait Rng {
    fn next(&mut self) -> u64;

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized;

    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized;

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized;
}

impl Rng for ThreadRng {
    fn next(&mut self) -> u64 {
        self.next_u64()
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = thread_rng();
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn gen_range_inclusive_hits_bounds() {
        let mut rng = thread_rng();
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            let v = rng.gen_range(0i64..=3);
            assert!((0..=3).contains(&v));
            lo_seen |= v == 0;
            hi_seen |= v == 3;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn successive_calls_differ() {
        let mut a = thread_rng();
        let mut b = thread_rng();
        let xs: Vec<u64> = (0..4).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.gen::<u64>()).collect();
        assert_ne!(xs, ys, "two handles should not replay the same stream");
    }
}
