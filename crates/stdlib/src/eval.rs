//! Builtin implementations, shared by the interpreter and the VM.
//!
//! All of them respect the runtime's GC invariants: no allocation while an
//! object lock is held, blocking reads/sleeps run inside GC safe regions,
//! and every intermediate allocation is rooted before the next one.

use crate::registry::Builtin;
use std::sync::Arc;
use std::time::Instant;
use tetra_runtime::{
    ConsoleRef, DictKey, ErrorKind, Heap, MutatorGuard, Object, RootSink, RootSource, RuntimeError,
    ThreadCell, ThreadState, Value,
};

/// Everything a builtin needs from its host engine.
pub struct HostCtx<'a> {
    pub heap: &'a Arc<Heap>,
    pub mutator: &'a MutatorGuard,
    /// The calling thread's live roots (must already cover `args`).
    pub roots: &'a dyn RootSource,
    pub console: &'a ConsoleRef,
    /// The Tetra thread cell, when running under an engine that tracks one.
    pub thread: Option<&'a Arc<ThreadCell>>,
    /// Source line of the call (for errors).
    pub line: u32,
}

/// Chain extra values in front of another root source (roots intermediate
/// allocations inside builtins).
struct WithValues<'a> {
    inner: &'a dyn RootSource,
    extra: &'a [Value],
}

impl RootSource for WithValues<'_> {
    fn roots(&self, sink: &mut RootSink) {
        self.inner.roots(sink);
        for v in self.extra {
            sink.value(*v);
        }
    }
}

fn verr(ctx: &HostCtx, msg: impl Into<String>) -> RuntimeError {
    RuntimeError::new(ErrorKind::Value, msg, ctx.line)
}

fn internal(ctx: &HostCtx, b: Builtin, what: &str) -> RuntimeError {
    RuntimeError::new(
        ErrorKind::Value,
        format!("{}: unexpected {what} (type checker should have rejected this)", b.name()),
        ctx.line,
    )
}

fn num(ctx: &HostCtx, b: Builtin, v: &Value) -> Result<f64, RuntimeError> {
    match v {
        Value::Int(i) => Ok(*i as f64),
        Value::Real(r) => Ok(*r),
        _ => Err(internal(ctx, b, "non-numeric argument")),
    }
}

fn int(ctx: &HostCtx, b: Builtin, v: &Value) -> Result<i64, RuntimeError> {
    v.as_int().ok_or_else(|| internal(ctx, b, "non-int argument"))
}

fn string<'v>(ctx: &HostCtx, b: Builtin, v: &'v Value) -> Result<&'v str, RuntimeError> {
    v.as_str().ok_or_else(|| internal(ctx, b, "non-string argument"))
}

fn array_ref<'v>(
    ctx: &HostCtx,
    b: Builtin,
    v: &'v Value,
) -> Result<&'v parking_lot::Mutex<Vec<Value>>, RuntimeError> {
    match v {
        Value::Obj(r) => match r.object() {
            Object::Array(m) => Ok(m),
            _ => Err(internal(ctx, b, "non-array argument")),
        },
        _ => Err(internal(ctx, b, "non-array argument")),
    }
}

fn dict_ref<'v>(
    ctx: &HostCtx,
    b: Builtin,
    v: &'v Value,
) -> Result<&'v parking_lot::Mutex<std::collections::HashMap<DictKey, Value>>, RuntimeError> {
    match v {
        Value::Obj(r) => match r.object() {
            Object::Dict(m) => Ok(m),
            _ => Err(internal(ctx, b, "non-dict argument")),
        },
        _ => Err(internal(ctx, b, "non-dict argument")),
    }
}

/// Total order on scalar/string values for `sort` (checker guarantees the
/// element type is ordered).
fn cmp_values(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x.cmp(y),
        (Value::Real(x), Value::Real(y)) => x.partial_cmp(y).unwrap_or(Ordering::Equal),
        (Value::Int(x), Value::Real(y)) => (*x as f64).partial_cmp(y).unwrap_or(Ordering::Equal),
        (Value::Real(x), Value::Int(y)) => x.partial_cmp(&(*y as f64)).unwrap_or(Ordering::Equal),
        _ => match (a.as_str(), b.as_str()) {
            (Some(x), Some(y)) => x.cmp(y),
            _ => Ordering::Equal,
        },
    }
}

/// Program-start reference point for `time_ms()`.
static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();

/// Run a blocking console read inside a GC safe region with the thread
/// state set for the debugger.
fn blocking_read(ctx: &HostCtx) -> Option<String> {
    if let Some(t) = ctx.thread {
        t.set_state(ThreadState::WaitingInput);
    }
    let line = ctx.heap.safe_region(ctx.mutator, ctx.roots, || ctx.console.read_line());
    if let Some(t) = ctx.thread {
        t.set_state(ThreadState::Running);
    }
    line
}

fn read_parsed<T: std::str::FromStr>(ctx: &HostCtx, what: &str) -> Result<T, RuntimeError> {
    match blocking_read(ctx) {
        None => Err(RuntimeError::new(
            ErrorKind::Io,
            format!("end of input while reading {what}"),
            ctx.line,
        )),
        Some(line) => line
            .trim()
            .parse::<T>()
            .map_err(|_| verr(ctx, format!("could not read {what} from input `{}`", line.trim()))),
    }
}

/// Execute builtin `b` with `args`. Argument types were validated
/// statically; dynamic errors here are genuine runtime conditions.
pub fn call_builtin(b: Builtin, ctx: &HostCtx, args: &[Value]) -> Result<Value, RuntimeError> {
    use Builtin::*;
    match b {
        // ---- I/O ----
        Print => {
            let mut out = String::new();
            for v in args {
                out.push_str(&v.display());
            }
            out.push('\n');
            ctx.console.write(&out);
            Ok(Value::None)
        }
        ReadInt => read_parsed::<i64>(ctx, "an integer").map(Value::Int),
        ReadReal => read_parsed::<f64>(ctx, "a real").map(Value::Real),
        ReadString => match blocking_read(ctx) {
            None => Err(RuntimeError::new(
                ErrorKind::Io,
                "end of input while reading a string",
                ctx.line,
            )),
            Some(line) => Ok(ctx.heap.alloc_str(ctx.mutator, ctx.roots, line)),
        },
        ReadBool => match blocking_read(ctx) {
            None => {
                Err(RuntimeError::new(ErrorKind::Io, "end of input while reading a bool", ctx.line))
            }
            Some(line) => match line.trim() {
                "true" => Ok(Value::Bool(true)),
                "false" => Ok(Value::Bool(false)),
                other => Err(verr(ctx, format!("could not read a bool from input `{other}`"))),
            },
        },

        // ---- core ----
        Len => match &args[0] {
            Value::Obj(r) => Ok(Value::Int(match r.object() {
                Object::Str(s) => s.chars().count() as i64,
                Object::Array(items) => items.lock().len() as i64,
                Object::Dict(map) => map.lock().len() as i64,
                Object::Tuple(items) => items.len() as i64,
            })),
            _ => Err(internal(ctx, b, "unsized value")),
        },

        // ---- math ----
        Abs => match &args[0] {
            Value::Int(v) => v
                .checked_abs()
                .map(Value::Int)
                .ok_or_else(|| RuntimeError::new(ErrorKind::Overflow, "abs overflowed", ctx.line)),
            Value::Real(v) => Ok(Value::Real(v.abs())),
            _ => Err(internal(ctx, b, "non-numeric argument")),
        },
        Min | Max => {
            let pick_first = matches!(
                (cmp_values(&args[0], &args[1]), b),
                (std::cmp::Ordering::Less, Min)
                    | (std::cmp::Ordering::Greater, Max)
                    | (std::cmp::Ordering::Equal, _)
            );
            let v = if pick_first { args[0] } else { args[1] };
            // int op int stays int; anything else becomes real.
            match (args[0], args[1]) {
                (Value::Int(_), Value::Int(_)) => Ok(v),
                _ => Ok(Value::Real(num(ctx, b, &v)?)),
            }
        }
        Sqrt => {
            let x = num(ctx, b, &args[0])?;
            if x < 0.0 {
                return Err(verr(ctx, format!("sqrt of negative number {x}")));
            }
            Ok(Value::Real(x.sqrt()))
        }
        Pow => match (args[0], args[1]) {
            (Value::Int(base), Value::Int(exp)) => {
                if exp < 0 {
                    return Err(verr(
                        ctx,
                        "pow(int, int) needs a non-negative exponent; use real arguments",
                    ));
                }
                let exp: u32 = exp.try_into().map_err(|_| {
                    RuntimeError::new(ErrorKind::Overflow, "pow exponent too large", ctx.line)
                })?;
                base.checked_pow(exp).map(Value::Int).ok_or_else(|| {
                    RuntimeError::new(ErrorKind::Overflow, "pow overflowed", ctx.line)
                })
            }
            (a, e) => Ok(Value::Real(num(ctx, b, &a)?.powf(num(ctx, b, &e)?))),
        },
        Floor => Ok(Value::Int(num(ctx, b, &args[0])?.floor() as i64)),
        Ceil => Ok(Value::Int(num(ctx, b, &args[0])?.ceil() as i64)),
        Round => Ok(Value::Int(num(ctx, b, &args[0])?.round() as i64)),
        Sin => Ok(Value::Real(num(ctx, b, &args[0])?.sin())),
        Cos => Ok(Value::Real(num(ctx, b, &args[0])?.cos())),
        Tan => Ok(Value::Real(num(ctx, b, &args[0])?.tan())),
        Log => {
            let x = num(ctx, b, &args[0])?;
            if x <= 0.0 {
                return Err(verr(ctx, format!("log of non-positive number {x}")));
            }
            Ok(Value::Real(x.ln()))
        }
        Exp => Ok(Value::Real(num(ctx, b, &args[0])?.exp())),
        Random => {
            use rand::Rng;
            Ok(Value::Real(rand::thread_rng().gen::<f64>()))
        }
        RandInt => {
            use rand::Rng;
            let lo = int(ctx, b, &args[0])?;
            let hi = int(ctx, b, &args[1])?;
            if lo > hi {
                return Err(verr(ctx, format!("rand_int range is empty: {lo} > {hi}")));
            }
            Ok(Value::Int(rand::thread_rng().gen_range(lo..=hi)))
        }

        // ---- conversions ----
        ToStr => Ok(ctx.heap.alloc_str(ctx.mutator, ctx.roots, args[0].display())),
        ToInt => match &args[0] {
            Value::Int(v) => Ok(Value::Int(*v)),
            Value::Real(v) => Ok(Value::Int(*v as i64)),
            Value::Bool(v) => Ok(Value::Int(*v as i64)),
            v => {
                let s = string(ctx, b, v)?;
                s.trim()
                    .parse::<i64>()
                    .map(Value::Int)
                    .map_err(|_| verr(ctx, format!("int() cannot parse `{}`", s.trim())))
            }
        },
        ToReal => match &args[0] {
            Value::Int(v) => Ok(Value::Real(*v as f64)),
            Value::Real(v) => Ok(Value::Real(*v)),
            v => {
                let s = string(ctx, b, v)?;
                s.trim()
                    .parse::<f64>()
                    .map(Value::Real)
                    .map_err(|_| verr(ctx, format!("real() cannot parse `{}`", s.trim())))
            }
        },

        // ---- strings ----
        Upper => {
            let s = string(ctx, b, &args[0])?.to_uppercase();
            Ok(ctx.heap.alloc_str(ctx.mutator, ctx.roots, s))
        }
        Lower => {
            let s = string(ctx, b, &args[0])?.to_lowercase();
            Ok(ctx.heap.alloc_str(ctx.mutator, ctx.roots, s))
        }
        Trim => {
            let s = string(ctx, b, &args[0])?.trim().to_string();
            Ok(ctx.heap.alloc_str(ctx.mutator, ctx.roots, s))
        }
        Substr => {
            let s = string(ctx, b, &args[0])?;
            let start = int(ctx, b, &args[1])?;
            let count = int(ctx, b, &args[2])?;
            if start < 0 || count < 0 {
                return Err(verr(ctx, "substr start and length must be non-negative"));
            }
            let sub: String = s.chars().skip(start as usize).take(count as usize).collect();
            Ok(ctx.heap.alloc_str(ctx.mutator, ctx.roots, sub))
        }
        Find => {
            let hay = string(ctx, b, &args[0])?;
            let needle = string(ctx, b, &args[1])?;
            match hay.find(needle) {
                // Report a character index, consistent with substr/len.
                Some(byte_idx) => Ok(Value::Int(hay[..byte_idx].chars().count() as i64)),
                None => Ok(Value::Int(-1)),
            }
        }
        Split => {
            let s = string(ctx, b, &args[0])?;
            let sep = string(ctx, b, &args[1])?;
            let parts: Vec<String> = if sep.is_empty() {
                s.chars().map(|c| c.to_string()).collect()
            } else {
                s.split(sep).map(|p| p.to_string()).collect()
            };
            let mut values: Vec<Value> = Vec::with_capacity(parts.len());
            for part in parts {
                let rooted = WithValues { inner: ctx.roots, extra: &values };
                let v = ctx.heap.alloc_str(ctx.mutator, &rooted, part);
                values.push(v);
            }
            let rooted = WithValues { inner: ctx.roots, extra: &values };
            Ok(ctx.heap.alloc_array(ctx.mutator, &rooted, values.clone()))
        }
        Join => {
            let sep = string(ctx, b, &args[1])?.to_string();
            let parts = array_ref(ctx, b, &args[0])?;
            // Copy handles out so the array lock is not held while rendering.
            let items: Vec<Value> = parts.lock().clone();
            let mut out = String::new();
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(&sep);
                }
                out.push_str(string(ctx, b, item)?);
            }
            Ok(ctx.heap.alloc_str(ctx.mutator, ctx.roots, out))
        }
        Replace => {
            let s = string(ctx, b, &args[0])?;
            let from = string(ctx, b, &args[1])?;
            let to = string(ctx, b, &args[2])?;
            if from.is_empty() {
                return Err(verr(ctx, "replace() pattern must not be empty"));
            }
            let out = s.replace(from, to);
            Ok(ctx.heap.alloc_str(ctx.mutator, ctx.roots, out))
        }
        StartsWith => {
            Ok(Value::Bool(string(ctx, b, &args[0])?.starts_with(string(ctx, b, &args[1])?)))
        }
        EndsWith => Ok(Value::Bool(string(ctx, b, &args[0])?.ends_with(string(ctx, b, &args[1])?))),

        // ---- arrays ----
        Append => {
            array_ref(ctx, b, &args[0])?.lock().push(args[1]);
            Ok(Value::None)
        }
        Pop => {
            let popped = array_ref(ctx, b, &args[0])?.lock().pop();
            popped.ok_or_else(|| {
                RuntimeError::new(ErrorKind::IndexOutOfBounds, "pop from an empty array", ctx.line)
            })
        }
        Insert => {
            let idx = int(ctx, b, &args[1])?;
            let arr = array_ref(ctx, b, &args[0])?;
            let mut items = arr.lock();
            if idx < 0 || idx as usize > items.len() {
                let len = items.len();
                return Err(RuntimeError::new(
                    ErrorKind::IndexOutOfBounds,
                    format!("insert index {idx} out of bounds for array of length {len}"),
                    ctx.line,
                ));
            }
            items.insert(idx as usize, args[2]);
            Ok(Value::None)
        }
        RemoveAt => {
            let idx = int(ctx, b, &args[1])?;
            let arr = array_ref(ctx, b, &args[0])?;
            let mut items = arr.lock();
            if idx < 0 || idx as usize >= items.len() {
                let len = items.len();
                return Err(RuntimeError::new(
                    ErrorKind::IndexOutOfBounds,
                    format!("remove_at index {idx} out of bounds for array of length {len}"),
                    ctx.line,
                ));
            }
            Ok(items.remove(idx as usize))
        }
        Clear => {
            array_ref(ctx, b, &args[0])?.lock().clear();
            Ok(Value::None)
        }
        Sort => {
            array_ref(ctx, b, &args[0])?.lock().sort_by(cmp_values);
            Ok(Value::None)
        }
        Reverse => {
            array_ref(ctx, b, &args[0])?.lock().reverse();
            Ok(Value::None)
        }
        IndexOf => {
            let items = array_ref(ctx, b, &args[0])?.lock();
            for (i, v) in items.iter().enumerate() {
                if v.tetra_eq(&args[1]) {
                    return Ok(Value::Int(i as i64));
                }
            }
            Ok(Value::Int(-1))
        }
        Contains => match &args[0] {
            v if v.as_str().is_some() => {
                let hay = string(ctx, b, v)?;
                let needle = string(ctx, b, &args[1])?;
                Ok(Value::Bool(hay.contains(needle)))
            }
            v => {
                let items = array_ref(ctx, b, v)?.lock();
                Ok(Value::Bool(items.iter().any(|x| x.tetra_eq(&args[1]))))
            }
        },
        Copy => {
            let items: Vec<Value> = array_ref(ctx, b, &args[0])?.lock().clone();
            Ok(ctx.heap.alloc_array(ctx.mutator, ctx.roots, items))
        }
        Sum => {
            let items = array_ref(ctx, b, &args[0])?.lock().clone();
            let mut int_total: i64 = 0;
            let mut real_total: f64 = 0.0;
            let mut is_real = false;
            for item in &items {
                match item {
                    Value::Int(v) => {
                        int_total = int_total.checked_add(*v).ok_or_else(|| {
                            RuntimeError::new(ErrorKind::Overflow, "sum overflowed", ctx.line)
                        })?;
                    }
                    Value::Real(v) => {
                        is_real = true;
                        real_total += v;
                    }
                    other => return Err(internal(ctx, b, other.type_name())),
                }
            }
            if is_real {
                Ok(Value::Real(real_total + int_total as f64))
            } else {
                Ok(Value::Int(int_total))
            }
        }
        MinOf | MaxOf => {
            let items = array_ref(ctx, b, &args[0])?.lock().clone();
            if items.is_empty() {
                return Err(RuntimeError::new(
                    ErrorKind::Value,
                    format!("{}() of an empty array", b.name()),
                    ctx.line,
                ));
            }
            let mut best = items[0];
            for item in &items[1..] {
                let ord = cmp_values(item, &best);
                let better = if b == MinOf {
                    ord == std::cmp::Ordering::Less
                } else {
                    ord == std::cmp::Ordering::Greater
                };
                if better {
                    best = *item;
                }
            }
            Ok(best)
        }
        Fill => {
            let n = int(ctx, b, &args[0])?;
            if n < 0 {
                return Err(verr(ctx, format!("fill length must be non-negative, got {n}")));
            }
            Ok(ctx.heap.alloc_array(ctx.mutator, ctx.roots, vec![args[1]; n as usize]))
        }

        // ---- dicts ----
        Keys => {
            let keys: Vec<DictKey> = {
                let map = dict_ref(ctx, b, &args[0])?.lock();
                let mut ks: Vec<DictKey> = map.keys().cloned().collect();
                ks.sort(); // deterministic order for students and tests
                ks
            };
            let mut values: Vec<Value> = Vec::with_capacity(keys.len());
            for k in keys {
                let v = match k {
                    DictKey::Int(i) => Value::Int(i),
                    DictKey::Bool(x) => Value::Bool(x),
                    DictKey::Str(s) => {
                        let rooted = WithValues { inner: ctx.roots, extra: &values };
                        ctx.heap.alloc_str(ctx.mutator, &rooted, s)
                    }
                };
                values.push(v);
            }
            let rooted = WithValues { inner: ctx.roots, extra: &values };
            Ok(ctx.heap.alloc_array(ctx.mutator, &rooted, values.clone()))
        }
        Values => {
            let vals: Vec<Value> = {
                let map = dict_ref(ctx, b, &args[0])?.lock();
                let mut entries: Vec<(DictKey, Value)> =
                    map.iter().map(|(k, v)| (k.clone(), *v)).collect();
                entries.sort_by(|a, b| a.0.cmp(&b.0));
                entries.into_iter().map(|(_, v)| v).collect()
            };
            // `vals` are rooted through the dict itself (in caller's roots).
            Ok(ctx.heap.alloc_array(ctx.mutator, ctx.roots, vals))
        }
        HasKey => {
            let key = args[1].to_dict_key().ok_or_else(|| internal(ctx, b, "unhashable key"))?;
            Ok(Value::Bool(dict_ref(ctx, b, &args[0])?.lock().contains_key(&key)))
        }
        RemoveKey => {
            let key = args[1].to_dict_key().ok_or_else(|| internal(ctx, b, "unhashable key"))?;
            Ok(Value::Bool(dict_ref(ctx, b, &args[0])?.lock().remove(&key).is_some()))
        }

        // ---- runtime services ----
        Gc => {
            ctx.heap.collect_now(ctx.mutator, ctx.roots);
            Ok(Value::None)
        }
        Sleep => {
            let ms = int(ctx, b, &args[0])?;
            if ms < 0 {
                return Err(verr(ctx, "sleep duration must be non-negative"));
            }
            ctx.heap.safe_region(ctx.mutator, ctx.roots, || {
                std::thread::sleep(std::time::Duration::from_millis(ms as u64));
            });
            Ok(Value::None)
        }
        TimeMs => {
            let epoch = EPOCH.get_or_init(Instant::now);
            Ok(Value::Int(epoch.elapsed().as_millis() as i64))
        }
        ThreadId => Ok(Value::Int(ctx.thread.map(|t| t.id as i64).unwrap_or(0))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetra_runtime::{BufferConsole, HeapConfig};

    /// Test host: every value it hands out stays rooted in `kept`, mimicking
    /// an engine whose temporaries live on a rooted stack.
    struct Host {
        heap: Arc<Heap>,
        console: Arc<BufferConsole>,
        kept: parking_lot::Mutex<Vec<Value>>,
    }

    struct KeptRoots<'a>(&'a Host, &'a [Value]);
    impl RootSource for KeptRoots<'_> {
        fn roots(&self, sink: &mut RootSink) {
            for v in self.0.kept.lock().iter() {
                sink.value(*v);
            }
            for v in self.1 {
                sink.value(*v);
            }
        }
    }

    impl Host {
        fn new() -> Host {
            Host {
                heap: Heap::new(HeapConfig::default()),
                console: BufferConsole::new(),
                kept: parking_lot::Mutex::new(Vec::new()),
            }
        }

        fn call(&self, b: Builtin, args: &[Value]) -> Result<Value, RuntimeError> {
            let m = self.heap.register_mutator();
            let console: ConsoleRef = self.console.clone();
            let ctx = HostCtx {
                heap: &self.heap,
                mutator: &m,
                roots: &KeptRoots(self, args),
                console: &console,
                thread: None,
                line: 1,
            };
            let result = call_builtin(b, &ctx, args);
            if let Ok(v) = &result {
                self.kept.lock().push(*v);
            }
            result
        }

        fn str_val(&self, s: &str) -> Value {
            let m = self.heap.register_mutator();
            let v = self.heap.alloc_str(&m, &KeptRoots(self, &[]), s);
            self.kept.lock().push(v);
            v
        }

        fn arr_val(&self, items: Vec<Value>) -> Value {
            let m = self.heap.register_mutator();
            let v = self.heap.alloc_array(&m, &KeptRoots(self, &items), items.clone());
            self.kept.lock().push(v);
            v
        }
    }

    #[test]
    fn print_concatenates_and_appends_newline() {
        let h = Host::new();
        let s = h.str_val("! = ");
        h.call(Builtin::Print, &[Value::Int(5), s, Value::Int(120)]).unwrap();
        assert_eq!(h.console.output(), "5! = 120\n");
    }

    #[test]
    fn read_int_parses_and_errors() {
        let h = Host::new();
        h.console.push_input(" 42 ");
        assert!(matches!(h.call(Builtin::ReadInt, &[]), Ok(Value::Int(42))));
        h.console.push_input("not a number");
        let err = h.call(Builtin::ReadInt, &[]).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Value);
        // Exhausted input is an Io error.
        let err = h.call(Builtin::ReadInt, &[]).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Io);
    }

    #[test]
    fn len_counts_chars_and_elements() {
        let h = Host::new();
        let s = h.str_val("héllo");
        assert!(matches!(h.call(Builtin::Len, &[s]), Ok(Value::Int(5))));
        let a = h.arr_val(vec![Value::Int(1), Value::Int(2)]);
        assert!(matches!(h.call(Builtin::Len, &[a]), Ok(Value::Int(2))));
    }

    #[test]
    fn math_builtins() {
        let h = Host::new();
        assert!(matches!(h.call(Builtin::Abs, &[Value::Int(-5)]), Ok(Value::Int(5))));
        assert!(
            matches!(h.call(Builtin::Sqrt, &[Value::Real(9.0)]), Ok(Value::Real(x)) if x == 3.0)
        );
        assert!(h.call(Builtin::Sqrt, &[Value::Real(-1.0)]).is_err());
        assert!(matches!(
            h.call(Builtin::Pow, &[Value::Int(2), Value::Int(10)]),
            Ok(Value::Int(1024))
        ));
        assert!(matches!(h.call(Builtin::Floor, &[Value::Real(2.9)]), Ok(Value::Int(2))));
        assert!(matches!(h.call(Builtin::Ceil, &[Value::Real(2.1)]), Ok(Value::Int(3))));
        assert!(matches!(h.call(Builtin::Min, &[Value::Int(3), Value::Int(7)]), Ok(Value::Int(3))));
        assert!(matches!(
            h.call(Builtin::Max, &[Value::Int(3), Value::Real(7.5)]),
            Ok(Value::Real(x)) if x == 7.5
        ));
    }

    #[test]
    fn pow_overflow_and_negative_exponent() {
        let h = Host::new();
        let err = h.call(Builtin::Pow, &[Value::Int(2), Value::Int(-1)]).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Value);
        let err = h.call(Builtin::Pow, &[Value::Int(10), Value::Int(60)]).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Overflow);
    }

    #[test]
    fn conversions() {
        let h = Host::new();
        let s = h.call(Builtin::ToStr, &[Value::Real(2.5)]).unwrap();
        assert_eq!(s.as_str(), Some("2.5"));
        let n = h.str_val(" -7 ");
        assert!(matches!(h.call(Builtin::ToInt, &[n]), Ok(Value::Int(-7))));
        assert!(matches!(h.call(Builtin::ToInt, &[Value::Real(3.9)]), Ok(Value::Int(3))));
        let bad = h.str_val("zz");
        assert!(h.call(Builtin::ToInt, &[bad]).is_err());
        assert!(
            matches!(h.call(Builtin::ToReal, &[Value::Int(2)]), Ok(Value::Real(x)) if x == 2.0)
        );
    }

    #[test]
    fn string_builtins() {
        let h = Host::new();
        let s = h.str_val("  Hello World  ");
        assert_eq!(h.call(Builtin::Trim, &[s]).unwrap().as_str(), Some("Hello World"));
        let s = h.str_val("abc");
        assert_eq!(h.call(Builtin::Upper, &[s]).unwrap().as_str(), Some("ABC"));
        let hay = h.str_val("hello world");
        let needle = h.str_val("world");
        assert!(matches!(h.call(Builtin::Find, &[hay, needle]), Ok(Value::Int(6))));
        let hay = h.str_val("hello");
        let needle = h.str_val("xyz");
        assert!(matches!(h.call(Builtin::Find, &[hay, needle]), Ok(Value::Int(-1))));
        let s = h.str_val("a,b,c");
        let sep = h.str_val(",");
        let parts = h.call(Builtin::Split, &[s, sep]).unwrap();
        assert_eq!(parts.display(), "[\"a\", \"b\", \"c\"]");
        let sep2 = h.str_val("-");
        let joined = h.call(Builtin::Join, &[parts, sep2]).unwrap();
        assert_eq!(joined.as_str(), Some("a-b-c"));
        let s = h.str_val("abcdef");
        let sub = h.call(Builtin::Substr, &[s, Value::Int(2), Value::Int(3)]).unwrap();
        assert_eq!(sub.as_str(), Some("cde"));
    }

    #[test]
    fn array_builtins() {
        let h = Host::new();
        let a = h.arr_val(vec![Value::Int(3), Value::Int(1), Value::Int(2)]);
        h.call(Builtin::Append, &[a, Value::Int(9)]).unwrap();
        assert!(matches!(h.call(Builtin::Len, &[a]), Ok(Value::Int(4))));
        h.call(Builtin::Sort, &[a]).unwrap();
        assert_eq!(a.display(), "[1, 2, 3, 9]");
        h.call(Builtin::Reverse, &[a]).unwrap();
        assert_eq!(a.display(), "[9, 3, 2, 1]");
        assert!(matches!(h.call(Builtin::IndexOf, &[a, Value::Int(2)]), Ok(Value::Int(2))));
        assert!(matches!(h.call(Builtin::Contains, &[a, Value::Int(42)]), Ok(Value::Bool(false))));
        let popped = h.call(Builtin::Pop, &[a]).unwrap();
        assert!(matches!(popped, Value::Int(1)));
        let removed = h.call(Builtin::RemoveAt, &[a, Value::Int(0)]).unwrap();
        assert!(matches!(removed, Value::Int(9)));
        h.call(Builtin::Clear, &[a]).unwrap();
        assert!(matches!(h.call(Builtin::Len, &[a]), Ok(Value::Int(0))));
        let err = h.call(Builtin::Pop, &[a]).unwrap_err();
        assert_eq!(err.kind, ErrorKind::IndexOutOfBounds);
    }

    #[test]
    fn fill_and_copy_are_independent() {
        let h = Host::new();
        let a = h.call(Builtin::Fill, &[Value::Int(3), Value::Int(7)]).unwrap();
        assert_eq!(a.display(), "[7, 7, 7]");
        let b = h.call(Builtin::Copy, &[a]).unwrap();
        h.call(Builtin::Append, &[b, Value::Int(8)]).unwrap();
        assert_eq!(a.display(), "[7, 7, 7]");
        assert_eq!(b.display(), "[7, 7, 7, 8]");
    }

    #[test]
    fn sort_strings() {
        let h = Host::new();
        let b1 = h.str_val("banana");
        let a1 = h.str_val("apple");
        let arr = h.arr_val(vec![b1, a1]);
        h.call(Builtin::Sort, &[arr]).unwrap();
        assert_eq!(arr.display(), "[\"apple\", \"banana\"]");
    }

    #[test]
    fn split_survives_gc_stress() {
        let h = Host::new();
        h.heap.set_stress(true);
        let s = h.str_val("x,y,z,w");
        let sep = h.str_val(",");
        let parts = h.call(Builtin::Split, &[s, sep]).unwrap();
        assert_eq!(parts.display(), "[\"x\", \"y\", \"z\", \"w\"]");
    }

    #[test]
    fn gc_builtin_collects() {
        let h = Host::new();
        let _garbage = h.str_val("dead");
        h.call(Builtin::Gc, &[]).unwrap();
        assert!(h.heap.stats().collections >= 1);
    }

    #[test]
    fn rand_int_respects_bounds() {
        let h = Host::new();
        for _ in 0..50 {
            let v = h
                .call(Builtin::RandInt, &[Value::Int(2), Value::Int(4)])
                .unwrap()
                .as_int()
                .unwrap();
            assert!((2..=4).contains(&v));
        }
        assert!(h.call(Builtin::RandInt, &[Value::Int(5), Value::Int(2)]).is_err());
    }

    #[test]
    fn time_ms_is_monotonic() {
        let h = Host::new();
        let t1 = h.call(Builtin::TimeMs, &[]).unwrap().as_int().unwrap();
        let t2 = h.call(Builtin::TimeMs, &[]).unwrap().as_int().unwrap();
        assert!(t2 >= t1);
    }

    #[test]
    fn dict_builtins() {
        let h = Host::new();
        let k = h.str_val("alpha");
        let v = h.str_val("first");
        let key = k.to_dict_key().unwrap();
        // Register the allocating mutator in a scope: holding it across
        // h.call() would be a second mutator on this OS thread, and a
        // stress collection inside the call would deadlock waiting for it.
        let d = {
            let m = h.heap.register_mutator();
            Value::Obj(h.heap.alloc(
                &m,
                &KeptRoots(&h, &[v]),
                tetra_runtime::Object::dict([(key, v)].into_iter().collect()),
            ))
        };
        h.kept.lock().push(d);
        // has_key / remove_key round trip.
        assert!(matches!(h.call(Builtin::HasKey, &[d, k]), Ok(Value::Bool(true))));
        let beta = h.str_val("beta");
        assert!(matches!(h.call(Builtin::HasKey, &[d, beta]), Ok(Value::Bool(false))));
        // keys and values come out sorted and aligned.
        let ks = h.call(Builtin::Keys, &[d]).unwrap();
        assert_eq!(ks.display(), "[\"alpha\"]");
        let vs = h.call(Builtin::Values, &[d]).unwrap();
        assert_eq!(vs.display(), "[\"first\"]");
        assert!(matches!(h.call(Builtin::RemoveKey, &[d, k]), Ok(Value::Bool(true))));
        assert!(matches!(h.call(Builtin::RemoveKey, &[d, k]), Ok(Value::Bool(false))));
        assert!(matches!(h.call(Builtin::Len, &[d]), Ok(Value::Int(0))));
    }

    #[test]
    fn keys_survive_gc_stress() {
        let h = Host::new();
        h.heap.set_stress(true);
        let mut map = std::collections::HashMap::new();
        for i in 0..8 {
            map.insert(tetra_runtime::DictKey::Str(format!("key{i}")), Value::Int(i));
        }
        // Scope the mutator (see dict_builtins): two live mutators on one
        // OS thread deadlock a stress collection.
        let d = {
            let m = h.heap.register_mutator();
            Value::Obj(h.heap.alloc(&m, &KeptRoots(&h, &[]), tetra_runtime::Object::dict(map)))
        };
        h.kept.lock().push(d);
        let ks = h.call(Builtin::Keys, &[d]).unwrap();
        assert_eq!(
            ks.display(),
            "[\"key0\", \"key1\", \"key2\", \"key3\", \"key4\", \"key5\", \"key6\", \"key7\"]"
        );
    }

    #[test]
    fn string_predicates() {
        let h = Host::new();
        let s = h.str_val("hello world");
        let pre = h.str_val("hello");
        let suf = h.str_val("world");
        assert!(matches!(h.call(Builtin::StartsWith, &[s, pre]), Ok(Value::Bool(true))));
        assert!(matches!(h.call(Builtin::EndsWith, &[s, suf]), Ok(Value::Bool(true))));
        assert!(matches!(h.call(Builtin::Contains, &[s, suf]), Ok(Value::Bool(true))));
        let from = h.str_val("l");
        let to = h.str_val("L");
        let replaced = h.call(Builtin::Replace, &[s, from, to]).unwrap();
        assert_eq!(replaced.as_str(), Some("heLLo worLd"));
    }

    #[test]
    fn insert_and_remove_at_bounds() {
        let h = Host::new();
        let a = h.arr_val(vec![Value::Int(1), Value::Int(3)]);
        h.call(Builtin::Insert, &[a, Value::Int(1), Value::Int(2)]).unwrap();
        assert_eq!(a.display(), "[1, 2, 3]");
        let err = h.call(Builtin::Insert, &[a, Value::Int(9), Value::Int(0)]).unwrap_err();
        assert_eq!(err.kind, ErrorKind::IndexOutOfBounds);
        let err = h.call(Builtin::RemoveAt, &[a, Value::Int(-1)]).unwrap_err();
        assert_eq!(err.kind, ErrorKind::IndexOutOfBounds);
    }
}
