//! Operator semantics shared by both execution engines.
//!
//! The tree-walking interpreter and the bytecode VM must agree exactly on
//! what `+`, `/`, `<`, `a[i]` etc. mean (the integration suite runs every
//! program under both engines and compares output), so the semantics live
//! here once.
//!
//! Summary of the rules:
//! * `int op int` stays `int`, with checked overflow and explicit
//!   divide-by-zero errors; division truncates toward zero;
//! * mixing `int` and `real` promotes to `real`;
//! * `+` also concatenates strings and same-typed arrays;
//! * `==`/`!=` are structural ([`Value::tetra_eq`]);
//! * ordering works on numbers and strings;
//! * indexing covers arrays, strings (chars), dicts and tuples.

use std::sync::Arc;
use tetra_ast::{BinOp, Type};
use tetra_runtime::{ErrorKind, Heap, MutatorGuard, Object, RootSource, RuntimeError, Value};

/// Minimal engine context for operators that may allocate.
pub struct OpCtx<'a> {
    pub heap: &'a Arc<Heap>,
    pub mutator: &'a MutatorGuard,
    pub roots: &'a dyn RootSource,
    pub line: u32,
}

impl OpCtx<'_> {
    fn err(&self, kind: ErrorKind, msg: impl Into<String>) -> RuntimeError {
        RuntimeError::new(kind, msg, self.line)
    }

    fn alloc_str(&self, s: String) -> Value {
        self.heap.alloc_str(self.mutator, self.roots, s)
    }
}

fn is_num(v: &Value) -> bool {
    matches!(v, Value::Int(_) | Value::Real(_))
}

fn to_f64(v: &Value) -> f64 {
    match v {
        Value::Int(i) => *i as f64,
        Value::Real(r) => *r,
        _ => unreachable!("guarded by is_num"),
    }
}

/// Widen an int into a real when the static type says `real`; keeps runtime
/// values consistent with the checker's view.
pub fn widen_to(ty: &Type, v: Value) -> Value {
    match (ty, v) {
        (Type::Real, Value::Int(i)) => Value::Real(i as f64),
        _ => v,
    }
}

/// Widen the incoming value to real iff the current slot value is real
/// (used by assignments, where only the runtime knows the slot).
pub fn widen_like(current: Option<Value>, new: Value) -> Value {
    match (current, new) {
        (Some(Value::Real(_)), Value::Int(i)) => Value::Real(i as f64),
        (_, v) => v,
    }
}

/// Apply a non-logical binary operator (logical `and`/`or` short-circuit in
/// the engines before operands are both evaluated).
pub fn binary(ctx: &OpCtx, op: BinOp, l: Value, r: Value) -> Result<Value, RuntimeError> {
    use BinOp::*;
    match op {
        Add | Sub | Mul | Div | Mod => arith(ctx, op, l, r),
        Eq => Ok(Value::Bool(l.tetra_eq(&r))),
        Ne => Ok(Value::Bool(!l.tetra_eq(&r))),
        Lt | Gt | Le | Ge => compare(ctx, op, l, r),
        And | Or => unreachable!("logical operators are short-circuited by the engines"),
    }
}

fn arith(ctx: &OpCtx, op: BinOp, l: Value, r: Value) -> Result<Value, RuntimeError> {
    use BinOp::*;
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => {
            let out = match op {
                Add => a.checked_add(b),
                Sub => a.checked_sub(b),
                Mul => a.checked_mul(b),
                Div => {
                    if b == 0 {
                        return Err(ctx.err(ErrorKind::DivideByZero, format!("{a} / 0")));
                    }
                    a.checked_div(b)
                }
                Mod => {
                    if b == 0 {
                        return Err(ctx.err(ErrorKind::DivideByZero, format!("{a} % 0")));
                    }
                    a.checked_rem(b)
                }
                _ => unreachable!(),
            };
            out.map(Value::Int).ok_or_else(|| {
                ctx.err(ErrorKind::Overflow, format!("integer overflow in `{}`", op.symbol()))
            })
        }
        (a, b) if is_num(&a) && is_num(&b) => {
            let (x, y) = (to_f64(&a), to_f64(&b));
            let out = match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                Div => {
                    if y == 0.0 {
                        return Err(ctx.err(ErrorKind::DivideByZero, format!("{x} / 0.0")));
                    }
                    x / y
                }
                Mod => {
                    if y == 0.0 {
                        return Err(ctx.err(ErrorKind::DivideByZero, format!("{x} % 0.0")));
                    }
                    x % y
                }
                _ => unreachable!(),
            };
            Ok(Value::Real(out))
        }
        (a, b) if op == Add && a.as_str().is_some() && b.as_str().is_some() => {
            Ok(ctx.alloc_str(format!("{}{}", a.as_str().unwrap(), b.as_str().unwrap())))
        }
        (Value::Obj(a), Value::Obj(b)) if op == Add => {
            let (Object::Array(x), Object::Array(y)) = (a.object(), b.object()) else {
                return Err(bad_arith(ctx, op, &Value::Obj(a), &Value::Obj(b)));
            };
            // Copy both sides before allocating; handle `a + a` without
            // double-locking.
            let mut items = x.lock().clone();
            if a == b {
                let copy = items.clone();
                items.extend(copy);
            } else {
                items.extend(y.lock().iter().copied());
            }
            Ok(Value::Obj(ctx.heap.alloc(ctx.mutator, ctx.roots, Object::array(items))))
        }
        (a, b) => Err(bad_arith(ctx, op, &a, &b)),
    }
}

fn bad_arith(ctx: &OpCtx, op: BinOp, a: &Value, b: &Value) -> RuntimeError {
    ctx.err(
        ErrorKind::Value,
        format!(
            "operator `{}` does not apply to {} and {}",
            op.symbol(),
            a.type_name(),
            b.type_name()
        ),
    )
}

fn compare(ctx: &OpCtx, op: BinOp, l: Value, r: Value) -> Result<Value, RuntimeError> {
    use std::cmp::Ordering;
    let ord = match (l, r) {
        (Value::Int(a), Value::Int(b)) => a.cmp(&b),
        (a, b) if is_num(&a) && is_num(&b) => {
            to_f64(&a).partial_cmp(&to_f64(&b)).unwrap_or(Ordering::Equal)
        }
        (a, b) => match (a.as_str(), b.as_str()) {
            (Some(x), Some(y)) => x.cmp(y),
            _ => {
                return Err(ctx.err(
                    ErrorKind::Value,
                    format!(
                        "cannot order {} and {} with `{}`",
                        a.type_name(),
                        b.type_name(),
                        op.symbol()
                    ),
                ))
            }
        },
    };
    let b = match op {
        BinOp::Lt => ord == Ordering::Less,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::Le => ord != Ordering::Greater,
        BinOp::Ge => ord != Ordering::Less,
        _ => unreachable!(),
    };
    Ok(Value::Bool(b))
}

/// Unary negation.
pub fn negate(ctx: &OpCtx, v: Value) -> Result<Value, RuntimeError> {
    match v {
        Value::Int(i) => i
            .checked_neg()
            .map(Value::Int)
            .ok_or_else(|| ctx.err(ErrorKind::Overflow, "negation overflowed")),
        Value::Real(r) => Ok(Value::Real(-r)),
        other => Err(ctx.err(ErrorKind::Value, format!("cannot negate a {}", other.type_name()))),
    }
}

/// Logical not.
pub fn not(ctx: &OpCtx, v: Value) -> Result<Value, RuntimeError> {
    match v {
        Value::Bool(b) => Ok(Value::Bool(!b)),
        other => {
            Err(ctx.err(ErrorKind::Value, format!("`not` applied to a {}", other.type_name())))
        }
    }
}

/// `base[index]` read.
pub fn index_read(ctx: &OpCtx, base: Value, index: Value) -> Result<Value, RuntimeError> {
    let Value::Obj(obj) = base else {
        return Err(ctx.err(ErrorKind::Value, format!("cannot index into a {}", base.type_name())));
    };
    match obj.object() {
        Object::Array(items) => {
            let idx = index
                .as_int()
                .ok_or_else(|| ctx.err(ErrorKind::Value, "array index must be an int"))?;
            let items = items.lock();
            if idx < 0 || idx as usize >= items.len() {
                let len = items.len();
                return Err(ctx.err(
                    ErrorKind::IndexOutOfBounds,
                    format!("index {idx} out of bounds for array of length {len}"),
                ));
            }
            Ok(items[idx as usize])
        }
        Object::Tuple(items) => {
            let idx = index
                .as_int()
                .ok_or_else(|| ctx.err(ErrorKind::Value, "tuple index must be an int"))?;
            if idx < 0 || idx as usize >= items.len() {
                return Err(ctx.err(
                    ErrorKind::IndexOutOfBounds,
                    format!("index {idx} out of bounds for tuple of {} elements", items.len()),
                ));
            }
            Ok(items[idx as usize])
        }
        Object::Str(s) => {
            let idx = index
                .as_int()
                .ok_or_else(|| ctx.err(ErrorKind::Value, "string index must be an int"))?;
            let ch = if idx >= 0 { s.chars().nth(idx as usize) } else { None };
            match ch {
                Some(c) => Ok(ctx.alloc_str(c.to_string())),
                None => Err(ctx.err(
                    ErrorKind::IndexOutOfBounds,
                    format!("index {idx} out of bounds for string of length {}", s.chars().count()),
                )),
            }
        }
        Object::Dict(map) => {
            let key = index.to_dict_key().ok_or_else(|| {
                ctx.err(ErrorKind::Value, format!("a {} cannot be a dict key", index.type_name()))
            })?;
            map.lock().get(&key).copied().ok_or_else(|| {
                ctx.err(ErrorKind::KeyNotFound, format!("key {} not found", key.display()))
            })
        }
    }
}

/// `base[index] = value` write. Preserves the realness of array slots so
/// static `[real]` arrays never hold ints.
pub fn index_write(ctx: &OpCtx, base: Value, index: Value, new: Value) -> Result<(), RuntimeError> {
    let Value::Obj(obj) = base else {
        return Err(ctx.err(ErrorKind::Value, format!("cannot assign into a {}", base.type_name())));
    };
    match obj.object() {
        Object::Array(items) => {
            let idx = index
                .as_int()
                .ok_or_else(|| ctx.err(ErrorKind::Value, "array index must be an int"))?;
            let mut items = items.lock();
            if idx < 0 || idx as usize >= items.len() {
                let len = items.len();
                return Err(ctx.err(
                    ErrorKind::IndexOutOfBounds,
                    format!("index {idx} out of bounds for array of length {len}"),
                ));
            }
            let slot = &mut items[idx as usize];
            *slot = widen_like(Some(*slot), new);
            Ok(())
        }
        Object::Dict(map) => {
            let key = index.to_dict_key().ok_or_else(|| {
                ctx.err(ErrorKind::Value, format!("a {} cannot be a dict key", index.type_name()))
            })?;
            map.lock().insert(key, new);
            Ok(())
        }
        Object::Str(_) => Err(ctx.err(ErrorKind::Value, "strings are immutable")),
        Object::Tuple(_) => Err(ctx.err(ErrorKind::Value, "tuples are immutable")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetra_runtime::{HeapConfig, NoRoots};

    fn with_ctx<T>(f: impl FnOnce(&OpCtx) -> T) -> T {
        let heap = Heap::new(HeapConfig::default());
        let m = heap.register_mutator();
        let ctx = OpCtx { heap: &heap, mutator: &m, roots: &NoRoots, line: 7 };
        f(&ctx)
    }

    #[test]
    fn int_arith_and_promotion() {
        with_ctx(|ctx| {
            assert!(matches!(
                binary(ctx, BinOp::Add, Value::Int(2), Value::Int(3)),
                Ok(Value::Int(5))
            ));
            assert!(matches!(
                binary(ctx, BinOp::Div, Value::Int(7), Value::Int(2)),
                Ok(Value::Int(3))
            ));
            assert!(matches!(
                binary(ctx, BinOp::Div, Value::Int(7), Value::Real(2.0)),
                Ok(Value::Real(x)) if x == 3.5
            ));
            assert!(matches!(
                binary(ctx, BinOp::Mod, Value::Int(7), Value::Int(3)),
                Ok(Value::Int(1))
            ));
        });
    }

    #[test]
    fn division_by_zero_has_line() {
        with_ctx(|ctx| {
            let e = binary(ctx, BinOp::Div, Value::Int(1), Value::Int(0)).unwrap_err();
            assert_eq!(e.kind, ErrorKind::DivideByZero);
            assert_eq!(e.line, 7);
        });
    }

    #[test]
    fn overflow_is_reported() {
        with_ctx(|ctx| {
            let e = binary(ctx, BinOp::Add, Value::Int(i64::MAX), Value::Int(1)).unwrap_err();
            assert_eq!(e.kind, ErrorKind::Overflow);
            let e = negate(ctx, Value::Int(i64::MIN)).unwrap_err();
            assert_eq!(e.kind, ErrorKind::Overflow);
        });
    }

    #[test]
    fn string_concat_allocates() {
        with_ctx(|ctx| {
            let a = ctx.alloc_str("foo".into());
            let b = ctx.alloc_str("bar".into());
            let c = binary(ctx, BinOp::Add, a, b).unwrap();
            assert_eq!(c.as_str(), Some("foobar"));
        });
    }

    #[test]
    fn array_self_concat() {
        with_ctx(|ctx| {
            let a = ctx.heap.alloc_array(ctx.mutator, &NoRoots, vec![Value::Int(1), Value::Int(2)]);
            let c = binary(ctx, BinOp::Add, a, a).unwrap();
            assert_eq!(c.display(), "[1, 2, 1, 2]");
        });
    }

    #[test]
    fn comparisons_mixed_numeric_and_strings() {
        with_ctx(|ctx| {
            assert!(matches!(
                binary(ctx, BinOp::Lt, Value::Int(1), Value::Real(1.5)),
                Ok(Value::Bool(true))
            ));
            let a = ctx.alloc_str("apple".into());
            let b = ctx.alloc_str("banana".into());
            assert!(matches!(binary(ctx, BinOp::Lt, a, b), Ok(Value::Bool(true))));
            let e = binary(ctx, BinOp::Lt, Value::Bool(true), Value::Bool(false)).unwrap_err();
            assert_eq!(e.kind, ErrorKind::Value);
        });
    }

    #[test]
    fn equality_is_structural() {
        with_ctx(|ctx| {
            let a = ctx.heap.alloc_array(ctx.mutator, &NoRoots, vec![Value::Int(1), Value::Int(2)]);
            let b = ctx.heap.alloc_array(ctx.mutator, &NoRoots, vec![Value::Int(1), Value::Int(2)]);
            assert!(matches!(binary(ctx, BinOp::Eq, a, b), Ok(Value::Bool(true))));
        });
    }

    #[test]
    fn index_read_write_round_trip() {
        with_ctx(|ctx| {
            let a = ctx.heap.alloc_array(ctx.mutator, &NoRoots, vec![Value::Int(1), Value::Int(2)]);
            index_write(ctx, a, Value::Int(1), Value::Int(9)).unwrap();
            assert!(matches!(index_read(ctx, a, Value::Int(1)), Ok(Value::Int(9))));
            let e = index_read(ctx, a, Value::Int(5)).unwrap_err();
            assert_eq!(e.kind, ErrorKind::IndexOutOfBounds);
            let e = index_write(ctx, a, Value::Int(-1), Value::Int(0)).unwrap_err();
            assert_eq!(e.kind, ErrorKind::IndexOutOfBounds);
        });
    }

    #[test]
    fn real_slots_stay_real() {
        with_ctx(|ctx| {
            let a = ctx.heap.alloc_array(ctx.mutator, &NoRoots, vec![Value::Real(1.5)]);
            index_write(ctx, a, Value::Int(0), Value::Int(2)).unwrap();
            assert!(matches!(index_read(ctx, a, Value::Int(0)), Ok(Value::Real(x)) if x == 2.0));
        });
        assert!(matches!(widen_to(&Type::Real, Value::Int(3)), Value::Real(x) if x == 3.0));
        assert!(matches!(widen_to(&Type::Int, Value::Int(3)), Value::Int(3)));
        assert!(matches!(
            widen_like(Some(Value::Real(0.0)), Value::Int(3)),
            Value::Real(x) if x == 3.0
        ));
    }

    #[test]
    fn string_and_tuple_indexing() {
        with_ctx(|ctx| {
            let s = ctx.alloc_str("héllo".into());
            let c = index_read(ctx, s, Value::Int(1)).unwrap();
            assert_eq!(c.as_str(), Some("é"));
            let t = Value::Obj(ctx.heap.alloc(
                ctx.mutator,
                &NoRoots,
                Object::Tuple(vec![Value::Int(1), Value::Bool(true)]),
            ));
            assert!(matches!(index_read(ctx, t, Value::Int(1)), Ok(Value::Bool(true))));
            let e = index_write(ctx, t, Value::Int(0), Value::Int(5)).unwrap_err();
            assert!(e.message.contains("immutable"));
        });
    }
}
