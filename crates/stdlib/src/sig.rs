//! Static signatures of the builtins, consumed by the type checker.
//!
//! Several builtins are polymorphic (`len` over every sized type, `append`
//! over `[T]`), so signatures are checking *functions* rather than flat
//! type lists.

use crate::registry::Builtin;
use tetra_ast::Type;

/// Can a value of type `actual` be passed where `expected` is required?
/// Exact match, plus the implicit `int → real` widening Tetra allows at
/// call sites and assignments.
pub fn compatible(expected: &Type, actual: &Type) -> bool {
    expected == actual || (*expected == Type::Real && *actual == Type::Int)
}

/// Type-check a call to builtin `b` with argument types `args`.
/// Returns the result type or a student-facing message.
pub fn check_builtin_call(b: Builtin, args: &[Type]) -> Result<Type, String> {
    use Builtin::*;
    let argn = |n: usize| -> Result<(), String> {
        if args.len() == n {
            Ok(())
        } else {
            Err(format!("{} expects {n} argument(s), got {}", b.name(), args.len()))
        }
    };
    let numeric = |i: usize| -> Result<(), String> {
        if args[i].is_numeric() {
            Ok(())
        } else {
            Err(format!("{} expects a numeric argument, got {}", b.name(), args[i]))
        }
    };
    let string = |i: usize| -> Result<(), String> {
        if args[i] == Type::Str {
            Ok(())
        } else {
            Err(format!("{} expects a string, got {}", b.name(), args[i]))
        }
    };
    let array = |i: usize| -> Result<Type, String> {
        match &args[i] {
            Type::Array(t) => Ok((**t).clone()),
            other => Err(format!("{} expects an array, got {other}", b.name())),
        }
    };
    let dict = |i: usize| -> Result<(Type, Type), String> {
        match &args[i] {
            Type::Dict(k, v) => Ok(((**k).clone(), (**v).clone())),
            other => Err(format!("{} expects a dict, got {other}", b.name())),
        }
    };
    let int_arg = |i: usize| -> Result<(), String> {
        if args[i] == Type::Int {
            Ok(())
        } else {
            Err(format!("{} expects an int, got {}", b.name(), args[i]))
        }
    };

    match b {
        Print => Ok(Type::None), // any number of any printable (= any) values
        ReadInt => argn(0).map(|_| Type::Int),
        ReadReal => argn(0).map(|_| Type::Real),
        ReadString => argn(0).map(|_| Type::Str),
        ReadBool => argn(0).map(|_| Type::Bool),
        Len => {
            argn(1)?;
            match &args[0] {
                Type::Str | Type::Array(_) | Type::Dict(_, _) | Type::Tuple(_) => Ok(Type::Int),
                other => Err(format!("len() does not apply to {other}")),
            }
        }
        Abs => {
            argn(1)?;
            numeric(0)?;
            Ok(args[0].clone())
        }
        Min | Max => {
            argn(2)?;
            numeric(0)?;
            numeric(1)?;
            if args[0] == Type::Int && args[1] == Type::Int {
                Ok(Type::Int)
            } else {
                Ok(Type::Real)
            }
        }
        Sqrt | Sin | Cos | Tan | Log | Exp => {
            argn(1)?;
            numeric(0)?;
            Ok(Type::Real)
        }
        Pow => {
            argn(2)?;
            numeric(0)?;
            numeric(1)?;
            if args[0] == Type::Int && args[1] == Type::Int {
                Ok(Type::Int)
            } else {
                Ok(Type::Real)
            }
        }
        Floor | Ceil | Round => {
            argn(1)?;
            numeric(0)?;
            Ok(Type::Int)
        }
        Random => argn(0).map(|_| Type::Real),
        RandInt => {
            argn(2)?;
            int_arg(0)?;
            int_arg(1)?;
            Ok(Type::Int)
        }
        ToStr => argn(1).map(|_| Type::Str),
        ToInt => {
            argn(1)?;
            match &args[0] {
                Type::Int | Type::Real | Type::Str | Type::Bool => Ok(Type::Int),
                other => Err(format!("int() cannot convert {other}")),
            }
        }
        ToReal => {
            argn(1)?;
            match &args[0] {
                Type::Int | Type::Real | Type::Str => Ok(Type::Real),
                other => Err(format!("real() cannot convert {other}")),
            }
        }
        Upper | Lower | Trim => {
            argn(1)?;
            string(0)?;
            Ok(Type::Str)
        }
        Substr => {
            argn(3)?;
            string(0)?;
            int_arg(1)?;
            int_arg(2)?;
            Ok(Type::Str)
        }
        Find => {
            argn(2)?;
            string(0)?;
            string(1)?;
            Ok(Type::Int)
        }
        Split => {
            argn(2)?;
            string(0)?;
            string(1)?;
            Ok(Type::array(Type::Str))
        }
        Join => {
            argn(2)?;
            let elem = array(0)?;
            if elem != Type::Str {
                return Err(format!("join() expects [string], got [{elem}]"));
            }
            string(1)?;
            Ok(Type::Str)
        }
        Replace => {
            argn(3)?;
            string(0)?;
            string(1)?;
            string(2)?;
            Ok(Type::Str)
        }
        StartsWith | EndsWith => {
            argn(2)?;
            string(0)?;
            string(1)?;
            Ok(Type::Bool)
        }
        Append => {
            argn(2)?;
            let elem = array(0)?;
            if !compatible(&elem, &args[1]) {
                return Err(format!("cannot append {} to [{elem}]", args[1]));
            }
            Ok(Type::None)
        }
        Pop => {
            argn(1)?;
            array(0)
        }
        Insert => {
            argn(3)?;
            let elem = array(0)?;
            int_arg(1)?;
            if !compatible(&elem, &args[2]) {
                return Err(format!("cannot insert {} into [{elem}]", args[2]));
            }
            Ok(Type::None)
        }
        RemoveAt => {
            argn(2)?;
            let elem = array(0)?;
            int_arg(1)?;
            Ok(elem)
        }
        Clear => {
            argn(1)?;
            array(0)?;
            Ok(Type::None)
        }
        Sort => {
            argn(1)?;
            let elem = array(0)?;
            if !elem.is_ordered() {
                return Err(format!("sort() needs an orderable element type, got [{elem}]"));
            }
            Ok(Type::None)
        }
        Reverse => {
            argn(1)?;
            array(0)?;
            Ok(Type::None)
        }
        IndexOf => {
            argn(2)?;
            let elem = array(0)?;
            if !compatible(&elem, &args[1]) {
                return Err(format!("index_of() needle {} does not match [{elem}]", args[1]));
            }
            Ok(Type::Int)
        }
        Contains => {
            argn(2)?;
            match &args[0] {
                Type::Str => {
                    string(1)?;
                    Ok(Type::Bool)
                }
                Type::Array(elem) => {
                    if !compatible(elem, &args[1]) {
                        return Err(format!(
                            "contains() needle {} does not match [{elem}]",
                            args[1]
                        ));
                    }
                    Ok(Type::Bool)
                }
                other => Err(format!("contains() does not apply to {other}")),
            }
        }
        Copy => {
            argn(1)?;
            let elem = array(0)?;
            Ok(Type::array(elem))
        }
        Sum => {
            argn(1)?;
            let elem = array(0)?;
            if !elem.is_numeric() {
                return Err(format!("sum() needs a numeric array, got [{elem}]"));
            }
            Ok(elem)
        }
        MinOf | MaxOf => {
            argn(1)?;
            let elem = array(0)?;
            if !elem.is_ordered() {
                return Err(format!(
                    "{}() needs an orderable element type, got [{elem}]",
                    b.name()
                ));
            }
            Ok(elem)
        }
        Fill => {
            argn(2)?;
            int_arg(0)?;
            Ok(Type::array(args[1].clone()))
        }
        Keys => {
            argn(1)?;
            let (k, _) = dict(0)?;
            Ok(Type::array(k))
        }
        Values => {
            argn(1)?;
            let (_, v) = dict(0)?;
            Ok(Type::array(v))
        }
        HasKey | RemoveKey => {
            argn(2)?;
            let (k, _) = dict(0)?;
            if !compatible(&k, &args[1]) {
                return Err(format!("{} key {} does not match {{{k}: _}}", b.name(), args[1]));
            }
            Ok(Type::Bool)
        }
        Gc => argn(0).map(|_| Type::None),
        Sleep => {
            argn(1)?;
            int_arg(0)?;
            Ok(Type::None)
        }
        TimeMs => argn(0).map(|_| Type::Int),
        ThreadId => argn(0).map(|_| Type::Int),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Builtin::*;

    #[test]
    fn len_is_polymorphic() {
        assert_eq!(check_builtin_call(Len, &[Type::Str]), Ok(Type::Int));
        assert_eq!(check_builtin_call(Len, &[Type::array(Type::Real)]), Ok(Type::Int));
        assert_eq!(check_builtin_call(Len, &[Type::dict(Type::Str, Type::Int)]), Ok(Type::Int));
        assert!(check_builtin_call(Len, &[Type::Int]).is_err());
    }

    #[test]
    fn abs_preserves_numeric_kind() {
        assert_eq!(check_builtin_call(Abs, &[Type::Int]), Ok(Type::Int));
        assert_eq!(check_builtin_call(Abs, &[Type::Real]), Ok(Type::Real));
        assert!(check_builtin_call(Abs, &[Type::Str]).is_err());
    }

    #[test]
    fn min_max_promote_to_real_when_mixed() {
        assert_eq!(check_builtin_call(Min, &[Type::Int, Type::Int]), Ok(Type::Int));
        assert_eq!(check_builtin_call(Max, &[Type::Int, Type::Real]), Ok(Type::Real));
    }

    #[test]
    fn array_builtins_are_element_polymorphic() {
        let arr = Type::array(Type::Str);
        assert_eq!(check_builtin_call(Pop, std::slice::from_ref(&arr)), Ok(Type::Str));
        assert_eq!(check_builtin_call(Append, &[arr.clone(), Type::Str]), Ok(Type::None));
        assert!(check_builtin_call(Append, &[arr.clone(), Type::Int]).is_err());
        assert_eq!(check_builtin_call(Copy, std::slice::from_ref(&arr)), Ok(arr));
    }

    #[test]
    fn append_allows_int_to_real_widening() {
        let arr = Type::array(Type::Real);
        assert_eq!(check_builtin_call(Append, &[arr, Type::Int]), Ok(Type::None));
    }

    #[test]
    fn sort_requires_ordered_elements() {
        assert!(check_builtin_call(Sort, &[Type::array(Type::Int)]).is_ok());
        assert!(check_builtin_call(Sort, &[Type::array(Type::Bool)]).is_err());
        assert!(check_builtin_call(Sort, &[Type::array(Type::array(Type::Int))]).is_err());
    }

    #[test]
    fn dict_builtins() {
        let d = Type::dict(Type::Str, Type::Int);
        assert_eq!(check_builtin_call(Keys, std::slice::from_ref(&d)), Ok(Type::array(Type::Str)));
        assert_eq!(
            check_builtin_call(Values, std::slice::from_ref(&d)),
            Ok(Type::array(Type::Int))
        );
        assert_eq!(check_builtin_call(HasKey, &[d.clone(), Type::Str]), Ok(Type::Bool));
        assert!(check_builtin_call(HasKey, &[d, Type::Int]).is_err());
    }

    #[test]
    fn arity_errors_name_the_function() {
        let err = check_builtin_call(Sqrt, &[]).unwrap_err();
        assert!(err.contains("sqrt"), "{err}");
        assert!(err.contains("1 argument"), "{err}");
    }

    #[test]
    fn contains_works_on_strings_and_arrays() {
        assert_eq!(check_builtin_call(Contains, &[Type::Str, Type::Str]), Ok(Type::Bool));
        assert_eq!(
            check_builtin_call(Contains, &[Type::array(Type::Int), Type::Int]),
            Ok(Type::Bool)
        );
        assert!(check_builtin_call(Contains, &[Type::Int, Type::Int]).is_err());
    }

    #[test]
    fn compatible_allows_int_widening_only() {
        assert!(compatible(&Type::Real, &Type::Int));
        assert!(!compatible(&Type::Int, &Type::Real));
        assert!(compatible(&Type::Str, &Type::Str));
        assert!(!compatible(&Type::array(Type::Real), &Type::array(Type::Int)));
    }
}
