//! The builtin registry: every function Tetra provides out of the box.
//!
//! The paper's stdlib is "extremely spartan ... basic I/O functions and
//! functions for finding the lengths of strings and arrays" (§VI), and
//! names "mathematical functions, string handling functions and so on" as
//! future work. Both are built here: the paper's originals plus the
//! promised library.
//!
//! User-defined functions shadow builtins — Fig. II defines its own `sum`,
//! so name resolution must prefer program functions (both engines do).

/// Every builtin, grouped the way README documents them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    // --- I/O (paper §II/§VI) ---
    Print,
    ReadInt,
    ReadReal,
    ReadString,
    ReadBool,
    // --- core (paper) ---
    Len,
    // --- math (future-work library) ---
    Abs,
    Min,
    Max,
    Sqrt,
    Pow,
    Floor,
    Ceil,
    Round,
    Sin,
    Cos,
    Tan,
    Log,
    Exp,
    Random,
    RandInt,
    // --- conversions ---
    ToStr,
    ToInt,
    ToReal,
    // --- strings (future-work library) ---
    Upper,
    Lower,
    Trim,
    Substr,
    Find,
    Split,
    Join,
    Replace,
    StartsWith,
    EndsWith,
    // --- arrays ---
    Append,
    Pop,
    Insert,
    RemoveAt,
    Clear,
    Sort,
    Reverse,
    IndexOf,
    Contains,
    Copy,
    Fill,
    Sum,
    MinOf,
    MaxOf,
    // --- dicts (extension §VI) ---
    Keys,
    Values,
    HasKey,
    RemoveKey,
    // --- runtime services ---
    Gc,
    Sleep,
    TimeMs,
    ThreadId,
}

impl Builtin {
    /// Resolve a source-level name to a builtin.
    pub fn lookup(name: &str) -> Option<Builtin> {
        use Builtin::*;
        Some(match name {
            "print" => Print,
            "read_int" => ReadInt,
            "read_real" => ReadReal,
            "read_string" => ReadString,
            "read_bool" => ReadBool,
            "len" => Len,
            "abs" => Abs,
            "min" => Min,
            "max" => Max,
            "sqrt" => Sqrt,
            "pow" => Pow,
            "floor" => Floor,
            "ceil" => Ceil,
            "round" => Round,
            "sin" => Sin,
            "cos" => Cos,
            "tan" => Tan,
            "log" => Log,
            "exp" => Exp,
            "random" => Random,
            "rand_int" => RandInt,
            "str" => ToStr,
            "int" => ToInt,
            "real" => ToReal,
            "upper" => Upper,
            "lower" => Lower,
            "trim" => Trim,
            "substr" => Substr,
            "find" => Find,
            "split" => Split,
            "join" => Join,
            "replace" => Replace,
            "starts_with" => StartsWith,
            "ends_with" => EndsWith,
            "append" => Append,
            "pop" => Pop,
            "insert" => Insert,
            "remove_at" => RemoveAt,
            "clear" => Clear,
            "sort" => Sort,
            "reverse" => Reverse,
            "index_of" => IndexOf,
            "contains" => Contains,
            "copy" => Copy,
            "fill" => Fill,
            "sum" => Sum,
            "min_of" => MinOf,
            "max_of" => MaxOf,
            "keys" => Keys,
            "values" => Values,
            "has_key" => HasKey,
            "remove_key" => RemoveKey,
            "gc" => Gc,
            "sleep" => Sleep,
            "time_ms" => TimeMs,
            "thread_id" => ThreadId,
            _ => return None,
        })
    }

    /// The source-level name.
    pub fn name(&self) -> &'static str {
        use Builtin::*;
        match self {
            Print => "print",
            ReadInt => "read_int",
            ReadReal => "read_real",
            ReadString => "read_string",
            ReadBool => "read_bool",
            Len => "len",
            Abs => "abs",
            Min => "min",
            Max => "max",
            Sqrt => "sqrt",
            Pow => "pow",
            Floor => "floor",
            Ceil => "ceil",
            Round => "round",
            Sin => "sin",
            Cos => "cos",
            Tan => "tan",
            Log => "log",
            Exp => "exp",
            Random => "random",
            RandInt => "rand_int",
            ToStr => "str",
            ToInt => "int",
            ToReal => "real",
            Upper => "upper",
            Lower => "lower",
            Trim => "trim",
            Substr => "substr",
            Find => "find",
            Split => "split",
            Join => "join",
            Replace => "replace",
            StartsWith => "starts_with",
            EndsWith => "ends_with",
            Append => "append",
            Pop => "pop",
            Insert => "insert",
            RemoveAt => "remove_at",
            Clear => "clear",
            Sort => "sort",
            Reverse => "reverse",
            IndexOf => "index_of",
            Contains => "contains",
            Copy => "copy",
            Fill => "fill",
            Sum => "sum",
            MinOf => "min_of",
            MaxOf => "max_of",
            Keys => "keys",
            Values => "values",
            HasKey => "has_key",
            RemoveKey => "remove_key",
            Gc => "gc",
            Sleep => "sleep",
            TimeMs => "time_ms",
            ThreadId => "thread_id",
        }
    }

    /// All builtins (docs, completion, tests).
    pub fn all() -> &'static [Builtin] {
        use Builtin::*;
        &[
            Print, ReadInt, ReadReal, ReadString, ReadBool, Len, Abs, Min, Max, Sqrt, Pow, Floor,
            Ceil, Round, Sin, Cos, Tan, Log, Exp, Random, RandInt, ToStr, ToInt, ToReal, Upper,
            Lower, Trim, Substr, Find, Split, Join, Replace, StartsWith, EndsWith, Append, Pop,
            Insert, RemoveAt, Clear, Sort, Reverse, IndexOf, Contains, Copy, Fill, Sum, MinOf,
            MaxOf, Keys, Values, HasKey, RemoveKey, Gc, Sleep, TimeMs, ThreadId,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_name_round_trip() {
        for b in Builtin::all() {
            assert_eq!(Builtin::lookup(b.name()), Some(*b), "{b:?}");
        }
    }

    #[test]
    fn unknown_names_return_none() {
        // `sum` IS a builtin now, but user definitions shadow it — Fig. II
        // keeps working (covered by integration tests).
        assert_eq!(Builtin::lookup("sum"), Some(Builtin::Sum));
        assert_eq!(Builtin::lookup("fact"), None);
        assert_eq!(Builtin::lookup(""), None);
    }

    #[test]
    fn all_names_are_unique() {
        let mut names: Vec<_> = Builtin::all().iter().map(|b| b.name()).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
