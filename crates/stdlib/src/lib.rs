//! # tetra-stdlib
//!
//! The Tetra standard library: the paper's "spartan" builtins (console I/O
//! and `len`, §VI) plus the richer library the paper lists as future work —
//! math, string handling, array utilities, dictionaries, and runtime
//! services (`gc`, `sleep`, `time_ms`, `thread_id`).
//!
//! The crate has two faces:
//!
//! * [`sig::check_builtin_call`] — static signatures, used by `tetra-types`;
//! * [`eval::call_builtin`] — implementations over `tetra-runtime`, used by
//!   both execution engines through [`eval::HostCtx`].
//!
//! User-defined functions shadow builtins (Fig. II of the paper defines its
//! own `sum`), so engines resolve program functions first and only then
//! consult [`registry::Builtin::lookup`].

pub mod eval;
pub mod ops;
pub mod registry;
pub mod sig;

pub use eval::{call_builtin, HostCtx};
pub use ops::OpCtx;
pub use registry::Builtin;
pub use sig::{check_builtin_call, compatible};
