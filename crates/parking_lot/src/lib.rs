//! API-compatible subset of the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment for this repository has no access to crates.io, so
//! the handful of `parking_lot` types the workspace uses are provided here
//! as thin wrappers over the standard library primitives. Differences from
//! std that this shim papers over:
//!
//! * `Mutex::lock` / `RwLock::read` / `RwLock::write` return guards
//!   directly (no `Result`); poisoning is ignored, matching parking_lot's
//!   behaviour of not poisoning on panic.
//! * `Condvar::wait` takes `&mut MutexGuard` instead of consuming the
//!   guard, which is the signature the runtime's GC and lock registry use.
//!
//! Only the surface actually used by the workspace is implemented.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// A mutual exclusion primitive (see module docs for semantics).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. Holds the inner std guard in an `Option` so a
/// [`Condvar`] can temporarily take ownership during a wait.
pub struct MutexGuard<'a, T: ?Sized> {
    // Invariant: `Some` except transiently inside `Condvar::wait*`.
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { guard: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { guard: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_deref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_deref_mut().expect("guard taken during condvar wait")
    }
}

/// A condition variable with parking_lot's `&mut guard` wait signature.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Block until notified, releasing the guard's mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard already taken");
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.guard = Some(inner);
    }

    /// Block until notified or `timeout` elapses. Returns true if it timed
    /// out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let inner = guard.guard.take().expect("guard already taken");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.guard = Some(inner);
        result.timed_out()
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// A reader-writer lock mirroring parking_lot's panic-free guard API.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// A one-time initialization flag (subset of `parking_lot::Once`).
pub struct Once {
    inner: std::sync::Once,
    done: AtomicBool,
}

impl Default for Once {
    fn default() -> Self {
        Once::new()
    }
}

impl Once {
    pub const fn new() -> Once {
        Once { inner: std::sync::Once::new(), done: AtomicBool::new(false) }
    }

    pub fn call_once(&self, f: impl FnOnce()) {
        self.inner.call_once(|| {
            f();
            self.done.store(true, Ordering::Release);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(10)));
    }
}
